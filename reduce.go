package streambalance

import (
	"math/rand"

	"streambalance/internal/geo"
	"streambalance/internal/jl"
)

// DimensionReducer is a fitted [MMR19]-style Johnson–Lindenstrauss
// projection onto a low-dimensional integer grid, for high-dimensional
// inputs (the paper's Section 1 remark: when d ≫ k/ε, reduce to
// poly(k/ε) dimensions first, run the coreset machinery there, then lift
// the centers back).
type DimensionReducer struct {
	t     *jl.Transform
	delta int64 // original grid bound, for lifting
}

// ReduceDimension fits a JL projection of the points onto a grid of m
// dimensions (0 = the [MMR19] target dimension for the given k and eps)
// and returns the reducer plus the reduced points, ready for
// BuildCoreset / NewStream.
func ReduceDimension(points []Point, k int, eps float64, m int, seed int64) (*DimensionReducer, []Point, error) {
	ps := geo.PointSet(points)
	if m <= 0 {
		m = jl.TargetDim(k, eps, ps.Dim())
	}
	rng := rand.New(rand.NewSource(seed))
	tr, err := jl.Fit(rng, ps, m, 1<<12)
	if err != nil {
		return nil, nil, err
	}
	red := tr.ApplyAll(ps)
	return &DimensionReducer{t: tr, delta: geo.MaxCoordRange(ps)}, red, nil
}

// Apply projects one original-space point into the reduced grid (for
// feeding further stream updates through the same frame).
func (dr *DimensionReducer) Apply(p Point) Point { return dr.t.Apply(p) }

// LiftCenters converts centers found in the reduced space back to
// original-space centers: each original point joins the cluster of its
// projection, and clusters are recentered in the original space.
func (dr *DimensionReducer) LiftCenters(original []Point, reducedCenters []Point) []Point {
	return jl.LiftCenters(dr.t, geo.PointSet(original), reducedCenters, dr.delta)
}

// ReducedDim returns the dimension of the reduced space.
func (dr *DimensionReducer) ReducedDim() int { return dr.t.M }

// ReducedDelta returns the grid bound of the reduced space (pass it as
// StreamConfig.Delta when streaming reduced points).
func (dr *DimensionReducer) ReducedDelta() int64 { return dr.t.Delta }
